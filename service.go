package cilkm

import (
	"context"
	"time"

	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/metrics"
	"repro/internal/reducers"
	"repro/internal/sched"
)

// Service is the resident multi-tenant runtime: one worker pool and one
// reducer engine absorbing request-shaped parallel jobs from any number of
// goroutines, with admission control, per-job deadlines and priorities,
// watchdog stall detection, and a graceful drain — the serving counterpart
// of the batch Session.  Create one with NewService, submit with Submit,
// shut down with Close:
//
//	svc := cilkm.NewService(cilkm.WithWorkers(8),
//	    cilkm.WithAdmitPolicy(cilkm.AdmitReject))
//	defer svc.Close()
//	h, err := svc.Submit(ctx, func(c *cilkm.Context, js *cilkm.JobSession) {
//	    sum := cilkm.NewAdd[int](js)
//	    c.ParallelFor(0, n, func(c *cilkm.Context, i int) { sum.Add(c, 1) })
//	    total = *sum.View(c) // in-trace read: every join has merged by now
//	}, cilkm.WithTimeout(time.Second))
//	if err == nil {
//	    err = h.Wait() // sum.Value() is also valid here: root merge precedes Wait
//	}
//
// Each job runs with its own JobSession — a per-tenant registration scope
// over the shared engine — so reducers live exactly as long as their job
// and one tenant never observes another's views.
type Service struct {
	eng core.Engine
	svc *sched.Service
}

// JobHandle tracks one submitted job: Wait for its outcome, Cancel it, or
// select on Done.
type JobHandle = sched.JobHandle

// JobSession is the per-job reducer scope handed to a submitted closure:
// register reducers through it exactly as through an Engine.  When the job
// settles — every branch it spawned has unwound, not merely the handle
// completing — the session is retired: its reducers are unregistered in
// one sweep (their final values remain readable) and their directory slots
// recycle to later jobs, with the engines' epoch-stamped slot reuse
// guaranteeing stale cross-job views are dropped, never merged.
type JobSession = core.JobSession

// ServiceStats is a point-in-time snapshot of the service counters.
type ServiceStats = sched.ServiceStats

// AdmitPolicy selects what Submit does when the admission queue is full.
type AdmitPolicy = sched.AdmitPolicy

// Admission policies.
const (
	// AdmitBlock blocks the submitter until space frees up (the default).
	AdmitBlock = sched.AdmitBlock
	// AdmitReject fails the submission immediately with ErrOverloaded.
	AdmitReject = sched.AdmitReject
	// AdmitShedOldest admits the new job and sheds the oldest queued job of
	// the lowest priority class with ErrOverloaded.
	AdmitShedOldest = sched.AdmitShedOldest
)

// DrainPolicy selects what Close does with jobs admitted before the close.
type DrainPolicy = sched.DrainPolicy

// Drain policies.
const (
	// DrainFinish runs every admitted job to completion before shutdown.
	DrainFinish = sched.DrainFinish
	// DrainCancel cancels queued and running jobs, then waits for them to
	// settle.
	DrainCancel = sched.DrainCancel
)

// ErrOverloaded is returned by Submit (reject policy) or delivered to a
// shed job's handle when the service is saturated.
var ErrOverloaded = sched.ErrOverloaded

// ErrStalled is the sentinel a watchdog-cancelled job's error wraps.
var ErrStalled = sched.ErrStalled

// StallError is the error a watchdog-cancelled job completes with: the
// exceeded window plus an all-goroutine stack dump captured at detection.
type StallError = sched.StallError

// WithQueueBound bounds the service's admission queue (jobs admitted but
// not yet executing); zero or unset selects 4× the worker count.  Only
// NewService reads it.
func WithQueueBound(n int) Option {
	return func(o *options) { o.svc.Queue = n }
}

// WithAdmitPolicy selects the overload policy (default AdmitBlock).  Only
// NewService reads it.
func WithAdmitPolicy(p AdmitPolicy) Option {
	return func(o *options) { o.svc.Admit = p }
}

// WithDrainPolicy selects what Close does with in-flight jobs (default
// DrainFinish).  Only NewService reads it.
func WithDrainPolicy(p DrainPolicy) Option {
	return func(o *options) { o.svc.Drain = p }
}

// WithWatchdog enables the stall watchdog: a job making no scheduler-visible
// progress (dispatch, steals, merges) for a whole window is cancelled with a
// *StallError carrying a stack dump.  Size the window for request-shaped
// fork-join jobs — a legitimate serial section longer than the window is
// flagged too.  Only NewService reads it.
func WithWatchdog(window time.Duration) Option {
	return func(o *options) { o.svc.Watchdog = window }
}

// NewService creates a resident service from the same functional options as
// New (mechanism, workers, engine knobs, metrics exporter) plus the service
// options (queue bound, admission and drain policies, watchdog).  Adaptive
// worker parking is always on for a service: workers stay hot while jobs
// are in flight and park after a single empty sweep when the service idles.
func NewService(opts ...Option) *Service {
	o := buildOptions(opts)
	eng := reducers.NewEngine(o.mech, o.workers, o.eng)
	rt := sched.New(sched.Config{Workers: o.workers, Reducers: eng})
	cfg := o.svc
	cfg.AdaptiveParking = true
	cfg.RootMerge = eng.MergeRootDeposit
	cfg.Quiesce = eng.Quiescent
	svc := sched.NewService(rt, cfg)
	if o.exporter != nil {
		if src, ok := core.Engine(eng).(MetricSource); ok {
			o.exporter.Register("engine", src)
		}
		o.exporter.Register("sched", rt)
		o.exporter.Register("service", svc)
		o.exporter.Register("faultinject", metrics.SourceFunc(faultinject.SampleMetrics))
	}
	return &Service{eng: eng, svc: svc}
}

// JobOption configures one Submit call.
type JobOption func(*sched.JobSpec)

// WithPriority orders the admission queue: higher runs first, ties run in
// submission order.  Zero is the normal priority.
func WithPriority(p int) JobOption {
	return func(s *sched.JobSpec) { s.Priority = p }
}

// WithTimeout bounds the job's total latency, queue wait included; expiry
// completes the handle with context.DeadlineExceeded and cancels the job at
// its next checkpoint.
func WithTimeout(d time.Duration) JobOption {
	return func(s *sched.JobSpec) { s.Timeout = d }
}

// WithOnDone runs f exactly once when the job's handle completes (the
// moment Wait would unblock).  For a cancelled job this can be before the
// job's reducer session is retired — retirement waits for every branch to
// unwind.  f must not block.
func WithOnDone(f func(err error)) JobOption {
	return func(s *sched.JobSpec) { s.OnDone = f }
}

// Submit admits fn for execution on the shared worker pool and returns a
// handle to wait on.  Safe from any number of goroutines.  fn receives the
// scheduler context and the job's own JobSession for reducer registration.
// The submission context governs the job end to end: cancelling it evicts a
// queued job immediately and aborts a running one at its next fork, steal,
// or merge checkpoint.
//
// Submit's error reports admission failures only (ErrClosed, ErrOverloaded,
// the context's error); execution errors — panics contained as *PanicError,
// deadline misses, stalls — are reported by the handle's Wait.
func (s *Service) Submit(ctx context.Context, fn func(*Context, *JobSession), opts ...JobOption) (*JobHandle, error) {
	js := core.NewJobSession(s.eng)
	spec := sched.JobSpec{
		Fn: func(c *Context) { fn(c, js) },
	}
	for _, o := range opts {
		o(&spec)
	}
	// Retire the tenant's reducers at settlement, not completion: a
	// cancelled job's handle completes while branches already on workers
	// keep unwinding to their next checkpoint, and those stragglers must
	// not find their directory slots recycled to another tenant.  At
	// settlement no strand can run again; a successful job's views were
	// merged before its handle completed, so the final values are already
	// in the (still readable) leftmost views, and a failed or cancelled
	// job's in-flight views are dropped by the engines' unregister
	// semantics, never merged.
	spec.OnSettle = js.Retire
	h, err := s.svc.Submit(ctx, spec)
	if err != nil {
		// Admission failed: the job will never run, so close its scope.
		js.Retire()
	}
	return h, err
}

// Stats snapshots the service counters (queue depth, rejections, sheds,
// deadline misses, watchdog cancellations, jobs running).
func (s *Service) Stats() ServiceStats { return s.svc.Stats() }

// Engine returns the shared reducer engine (for reading retired reducers'
// values or wiring instrumentation); register job reducers through the
// JobSession, not here.
func (s *Service) Engine() Engine { return s.eng }

// Runtime returns the underlying scheduler runtime.
func (s *Service) Runtime() *sched.Runtime { return s.svc.Runtime() }

// Close drains and shuts the service down: admission stops (concurrent
// Submit calls deterministically return ErrClosed), in-flight jobs finish
// or cancel per the drain policy, the pool stops, and pool-wide quiescence
// is verified — scheduler accounting plus the engine's page/arena/view leak
// check.  The first leak found is returned.  Close is idempotent.
func (s *Service) Close() error { return s.svc.Close() }
