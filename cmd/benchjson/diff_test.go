package main

import (
	"strings"
	"testing"
)

// fixture builds a Document from (name, ns/op) pairs.
func fixture(pairs ...any) Document {
	var doc Document
	for i := 0; i+1 < len(pairs); i += 2 {
		doc.Benchmarks = append(doc.Benchmarks, Result{
			Name:       pairs[i].(string),
			Iterations: 1,
			NsPerOp:    pairs[i+1].(float64),
		})
	}
	return doc
}

func TestDiffDetectsHeadlineRegression(t *testing.T) {
	oldDoc := fixture("BenchmarkForkNoSteal-8", 100.0)
	newDoc := fixture("BenchmarkForkNoSteal-8", 125.0)
	d := computeDiff(oldDoc, newDoc, 10)
	regs := d.regressions()
	if len(regs) != 1 {
		t.Fatalf("regressions = %v, want exactly one", regs)
	}
	r := regs[0]
	if r.Name != "BenchmarkForkNoSteal" || r.Category != "fork" {
		t.Errorf("regression row = %+v, want normalised fork headline", r)
	}
	if r.DeltaPct < 24.9 || r.DeltaPct > 25.1 {
		t.Errorf("DeltaPct = %v, want ~25", r.DeltaPct)
	}
}

func TestDiffWithinToleranceAndNonHeadline(t *testing.T) {
	oldDoc := fixture(
		"BenchmarkForkNoSteal", 100.0, // headline: +5% is inside the gate
		"BenchmarkTypedAdd/memory-mapped", 10.0, // non-headline: +300% is advisory
	)
	newDoc := fixture(
		"BenchmarkForkNoSteal", 105.0,
		"BenchmarkTypedAdd/memory-mapped", 40.0,
	)
	d := computeDiff(oldDoc, newDoc, 10)
	if regs := d.regressions(); len(regs) != 0 {
		t.Fatalf("regressions = %v, want none (within tolerance / non-headline)", regs)
	}
	// The non-headline slowdown still appears in the table.
	var sawTyped bool
	for _, r := range d.Rows {
		if r.Name == "BenchmarkTypedAdd/memory-mapped" {
			sawTyped = true
			if r.Category != "" || r.Regressed {
				t.Errorf("non-headline row = %+v, want advisory", r)
			}
		}
	}
	if !sawTyped {
		t.Error("non-headline benchmark missing from the delta table")
	}
}

func TestDiffImprovementNeverRegresses(t *testing.T) {
	oldDoc := fixture("BenchmarkStealThroughput", 100.0)
	newDoc := fixture("BenchmarkStealThroughput", 50.0)
	d := computeDiff(oldDoc, newDoc, 10)
	if regs := d.regressions(); len(regs) != 0 {
		t.Fatalf("regressions = %v, want none for a 50%% improvement", regs)
	}
}

func TestDiffMissingBenchmarkWarnsWithoutFailing(t *testing.T) {
	oldDoc := fixture(
		"BenchmarkForkNoSteal", 100.0,
		"BenchmarkRenamedAway", 50.0,
	)
	newDoc := fixture(
		"BenchmarkForkNoSteal", 100.0,
		"BenchmarkBrandNew", 60.0,
	)
	d := computeDiff(oldDoc, newDoc, 10)
	if regs := d.regressions(); len(regs) != 0 {
		t.Fatalf("regressions = %v, want none", regs)
	}
	if len(d.MissingInNew) != 1 || d.MissingInNew[0] != "BenchmarkRenamedAway" {
		t.Errorf("MissingInNew = %v, want [BenchmarkRenamedAway]", d.MissingInNew)
	}
	if len(d.MissingInOld) != 1 || d.MissingInOld[0] != "BenchmarkBrandNew" {
		t.Errorf("MissingInOld = %v, want [BenchmarkBrandNew]", d.MissingInOld)
	}
	var out strings.Builder
	writeDiff(&out, d, "old.json", "new.json")
	if !strings.Contains(out.String(), "warning: BenchmarkRenamedAway") {
		t.Errorf("rendered diff lacks missing-benchmark warning:\n%s", out.String())
	}
}

func TestDiffRaceSuffixedRunsLineUp(t *testing.T) {
	// A -race bench artifact must compare against a plain baseline without
	// every benchmark degenerating into missing-name warnings.
	oldDoc := fixture("BenchmarkStealThroughput-4", 100.0)
	newDoc := fixture("BenchmarkStealThroughput-race-4", 104.0)
	d := computeDiff(oldDoc, newDoc, 10)
	if len(d.MissingInNew) != 0 || len(d.MissingInOld) != 0 {
		t.Fatalf("missing = %v / %v, want suffixed names to line up", d.MissingInNew, d.MissingInOld)
	}
	if len(d.Rows) != 1 || d.Rows[0].Name != "BenchmarkStealThroughput" {
		t.Fatalf("rows = %+v, want one normalised steal row", d.Rows)
	}
}

func TestDiffHeaderReportsBaselinePath(t *testing.T) {
	d := computeDiff(fixture("BenchmarkForkNoSteal", 100.0), fixture("BenchmarkForkNoSteal", 100.0), 10)
	var out strings.Builder
	writeDiff(&out, d, "BENCH_pr6.json", "BENCH_pr8.json")
	if !strings.Contains(out.String(), "baseline: BENCH_pr6.json") {
		t.Errorf("diff header lacks the baseline path:\n%s", out.String())
	}
}

func TestDiffAggregatesRepeatedRunsByMin(t *testing.T) {
	// -count=3 produces three lines per benchmark; min ns/op wins.
	oldDoc := fixture(
		"BenchmarkMMLookupRaw", 10.0,
		"BenchmarkMMLookupRaw", 8.0,
		"BenchmarkMMLookupRaw", 12.0,
	)
	newDoc := fixture(
		"BenchmarkMMLookupRaw-16", 9.0,
		"BenchmarkMMLookupRaw-16", 8.5,
	)
	d := computeDiff(oldDoc, newDoc, 10)
	if len(d.Rows) != 1 {
		t.Fatalf("rows = %+v, want one aggregated row", d.Rows)
	}
	r := d.Rows[0]
	if r.OldNs != 8.0 || r.NewNs != 8.5 {
		t.Errorf("aggregated ns/op = %v -> %v, want 8 -> 8.5 (min of runs)", r.OldNs, r.NewNs)
	}
	if r.Regressed {
		t.Errorf("6.25%% delta regressed at a 10%% gate: %+v", r)
	}
}

func TestNormalizeBenchName(t *testing.T) {
	cases := map[string]string{
		"BenchmarkForkNoSteal-8":          "BenchmarkForkNoSteal",
		"BenchmarkForkNoSteal-128":        "BenchmarkForkNoSteal",
		"BenchmarkForkNoStealDepth8":      "BenchmarkForkNoStealDepth8",
		"BenchmarkTypedAdd/hypermap":      "BenchmarkTypedAdd/hypermap",
		"BenchmarkMergeParallel1k":        "BenchmarkMergeParallel1k",
		"BenchmarkRegisterChurn-foo-8":    "BenchmarkRegisterChurn-foo",
		"BenchmarkForkNoSteal-race":       "BenchmarkForkNoSteal",
		"BenchmarkForkNoSteal-short":      "BenchmarkForkNoSteal",
		"BenchmarkForkNoSteal-race-8":     "BenchmarkForkNoSteal",
		"BenchmarkForkNoSteal-8-race":     "BenchmarkForkNoSteal",
		"BenchmarkRegisterChurn-foo-race": "BenchmarkRegisterChurn-foo",
	}
	for in, want := range cases {
		if got := normalizeBenchName(in); got != want {
			t.Errorf("normalizeBenchName(%q) = %q, want %q", in, got, want)
		}
	}
}
