// Command benchjson converts `go test -bench` text output read from stdin
// into a JSON document, so CI can commit benchmark runs as machine-readable
// perf-trajectory artifacts without external tooling.  The raw input is
// echoed to stdout unchanged, letting the command sit at the end of a pipe
// while still showing the numbers in the CI log.
//
// The diff subcommand compares two committed artifacts, prints a
// per-benchmark delta table, and exits nonzero when a headline benchmark
// (fork, steal, lookup, merge, first-lookup) regressed by more than the
// threshold — the repo's CI-advisory perf-trajectory guardrail.
//
// Usage:
//
//	go test -run NONE -bench . -benchmem ./... | go run ./cmd/benchjson -out BENCH.json
//	go run ./cmd/benchjson diff [-threshold pct] BENCH_pr5.json BENCH_pr6.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Result is one benchmark line.  Extra metrics reported via
// testing.B.ReportMetric land in Metrics keyed by their unit.
type Result struct {
	Name        string             `json:"name"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  float64            `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64            `json:"allocs_per_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// Document is the emitted artifact.
type Document struct {
	Label      string   `json:"label,omitempty"`
	Goos       string   `json:"goos,omitempty"`
	Goarch     string   `json:"goarch,omitempty"`
	Pkgs       []string `json:"pkgs,omitempty"`
	CPU        string   `json:"cpu,omitempty"`
	Benchmarks []Result `json:"benchmarks"`
}

func main() {
	if len(os.Args) > 1 && os.Args[1] == "diff" {
		os.Exit(runDiff(os.Args[2:]))
	}
	out := flag.String("out", "", "file to write the JSON document to (default stdout only)")
	label := flag.String("label", "", "free-form label stored in the document")
	flag.Parse()

	doc := Document{Label: *label}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line)
		switch {
		case strings.HasPrefix(line, "goos:"):
			doc.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			doc.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "pkg:"):
			doc.Pkgs = append(doc.Pkgs, strings.TrimSpace(strings.TrimPrefix(line, "pkg:")))
		case strings.HasPrefix(line, "cpu:"):
			doc.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "Benchmark"):
			if r, ok := parseBenchLine(line); ok {
				doc.Benchmarks = append(doc.Benchmarks, r)
			}
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: reading stdin: %v\n", err)
		os.Exit(1)
	}

	enc, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: encoding: %v\n", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: writing %s: %v\n", *out, err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d benchmark results to %s\n", len(doc.Benchmarks), *out)
}

// parseBenchLine parses one benchmark result line of the form
//
//	BenchmarkName-8   123456   9.87 ns/op   16 B/op   2 allocs/op   0.5 extra/unit
//
// Fields after the iteration count come in (value, unit) pairs.
func parseBenchLine(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Result{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	r := Result{Name: fields[0], Iterations: iters}
	for i := 2; i+1 < len(fields); i += 2 {
		val, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Result{}, false
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			r.NsPerOp = val
		case "B/op":
			r.BytesPerOp = val
		case "allocs/op":
			r.AllocsPerOp = val
		default:
			if r.Metrics == nil {
				r.Metrics = make(map[string]float64)
			}
			r.Metrics[unit] = val
		}
	}
	return r, true
}
