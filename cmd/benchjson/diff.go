package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
)

// This file implements `benchjson diff`: the bench-trajectory guardrail
// that compares two committed BENCH_pr*.json artifacts and flags
// regressions.  The comparison is deliberately conservative about noise:
//
//   - Names are normalised by stripping the trailing -<GOMAXPROCS> suffix,
//     so artifacts recorded on machines with different core counts still
//     line up.
//   - Repeated runs of one benchmark (-count=N) aggregate by minimum
//     ns/op — the standard "best observed run" estimator, least sensitive
//     to scheduling noise.
//   - Only the headline benchmarks (fork, steal, lookup, merge,
//     first-lookup — the paper's core operations) can fail the diff;
//     everything else is reported but advisory.  A benchmark present in
//     one artifact and missing from the other is a warning, not a
//     failure, so renames don't brick CI.
//
// The exit status is CI-advisory: the workflow runs the diff with
// continue-on-error so a regression turns the job yellow for a human to
// read, rather than blocking unrelated work on a noisy runner.

// headlineBenchmarks maps a headline category to the normalised benchmark
// names that represent it.  A >threshold ns/op regression in any of these
// makes the diff exit nonzero.
var headlineBenchmarks = map[string][]string{
	"fork":         {"BenchmarkForkNoSteal", "BenchmarkForkNoStealDepth8"},
	"steal":        {"BenchmarkStealThroughput"},
	"lookup":       {"BenchmarkMMLookupRaw", "BenchmarkMMLookupRepeated"},
	"merge":        {"BenchmarkMergeSerial256", "BenchmarkMergeParallel1k", "BenchmarkMMMergeWritten100"},
	"first-lookup": {"BenchmarkMMFirstLookupArena", "BenchmarkMMFirstLookupHeap"},
}

// headlineCategory returns the category of a normalised benchmark name, or
// "" when the benchmark is not a headline.
func headlineCategory(name string) string {
	for cat, names := range headlineBenchmarks {
		for _, n := range names {
			if n == name {
				return cat
			}
		}
	}
	return ""
}

// normalizeBenchName strips run-configuration suffixes so artifacts
// recorded under different settings still line up: the trailing -<digits>
// GOMAXPROCS suffix that `go test -bench` appends to parallel benchmark
// names, and the -race / -short tags a bench runner may append when it
// records instrumented or shortened runs.  Tags can stack (a -race run on
// 8 cores records Benchmark...-race-8), so stripping repeats until no
// recognised suffix remains.
func normalizeBenchName(name string) string {
	for {
		i := strings.LastIndex(name, "-")
		if i <= 0 {
			return name
		}
		suffix := name[i+1:]
		switch {
		case suffix == "race" || suffix == "short":
		case suffix != "" && strings.Trim(suffix, "0123456789") == "":
		default:
			return name
		}
		name = name[:i]
	}
}

// aggregateResults reduces a document to one ns/op per normalised
// benchmark name, taking the minimum over repeated runs.
func aggregateResults(doc Document) map[string]float64 {
	out := make(map[string]float64)
	for _, r := range doc.Benchmarks {
		name := normalizeBenchName(r.Name)
		if best, ok := out[name]; !ok || r.NsPerOp < best {
			out[name] = r.NsPerOp
		}
	}
	return out
}

// diffRow is one line of the delta table.
type diffRow struct {
	Name      string
	Category  string // headline category, or "" for advisory benchmarks
	OldNs     float64
	NewNs     float64
	DeltaPct  float64 // (new-old)/old, in percent; positive is a slowdown
	Regressed bool    // headline benchmark above the threshold
}

// benchDiff is the computed comparison between two artifacts.
type benchDiff struct {
	Rows []diffRow
	// MissingInNew lists benchmarks present in the old artifact only;
	// MissingInOld the reverse.  Both warn without failing the diff.
	MissingInNew []string
	MissingInOld []string
}

// regressions returns the rows that fail the guardrail.
func (d benchDiff) regressions() []diffRow {
	var out []diffRow
	for _, r := range d.Rows {
		if r.Regressed {
			out = append(out, r)
		}
	}
	return out
}

// computeDiff compares two artifacts.  thresholdPct is the regression gate
// in percent (10 means a headline benchmark may be up to 10% slower).
func computeDiff(oldDoc, newDoc Document, thresholdPct float64) benchDiff {
	oldNs := aggregateResults(oldDoc)
	newNs := aggregateResults(newDoc)
	var d benchDiff
	for name, o := range oldNs {
		n, ok := newNs[name]
		if !ok {
			d.MissingInNew = append(d.MissingInNew, name)
			continue
		}
		row := diffRow{Name: name, Category: headlineCategory(name), OldNs: o, NewNs: n}
		if o > 0 {
			row.DeltaPct = (n - o) / o * 100
		}
		row.Regressed = row.Category != "" && row.DeltaPct > thresholdPct
		d.Rows = append(d.Rows, row)
	}
	for name := range newNs {
		if _, ok := oldNs[name]; !ok {
			d.MissingInOld = append(d.MissingInOld, name)
		}
	}
	sort.Slice(d.Rows, func(i, j int) bool { return d.Rows[i].Name < d.Rows[j].Name })
	sort.Strings(d.MissingInNew)
	sort.Strings(d.MissingInOld)
	return d
}

// writeDiff renders the delta table and warnings.  The header names the
// comparison baseline explicitly so a pasted table is self-describing —
// "which artifact were these deltas measured against" does not depend on
// remembering the argument order.
func writeDiff(w io.Writer, d benchDiff, oldLabel, newLabel string) {
	fmt.Fprintf(w, "benchmark comparison: %s -> %s\n", oldLabel, newLabel)
	fmt.Fprintf(w, "baseline: %s\n\n", oldLabel)
	fmt.Fprintf(w, "%-44s %14s %14s %9s  %s\n", "benchmark", "old ns/op", "new ns/op", "delta", "headline")
	for _, r := range d.Rows {
		mark := r.Category
		if r.Regressed {
			mark += "  REGRESSION"
		}
		fmt.Fprintf(w, "%-44s %14.1f %14.1f %+8.1f%%  %s\n", r.Name, r.OldNs, r.NewNs, r.DeltaPct, mark)
	}
	for _, name := range d.MissingInNew {
		fmt.Fprintf(w, "warning: %s present in %s but missing from %s\n", name, oldLabel, newLabel)
	}
	for _, name := range d.MissingInOld {
		fmt.Fprintf(w, "warning: %s present in %s but missing from %s\n", name, newLabel, oldLabel)
	}
}

// loadDocument reads one BENCH_pr*.json artifact.
func loadDocument(path string) (Document, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Document{}, err
	}
	var doc Document
	if err := json.Unmarshal(data, &doc); err != nil {
		return Document{}, fmt.Errorf("%s: %w", path, err)
	}
	return doc, nil
}

// runDiff implements the diff subcommand; it returns the process exit
// code: 0 clean, 1 headline regression, 2 usage or I/O error.
func runDiff(args []string) int {
	fs := flag.NewFlagSet("benchjson diff", flag.ContinueOnError)
	threshold := fs.Float64("threshold", 10, "headline regression gate in percent")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchjson diff [-threshold pct] OLD.json NEW.json")
		return 2
	}
	oldPath, newPath := fs.Arg(0), fs.Arg(1)
	oldDoc, err := loadDocument(oldPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		return 2
	}
	newDoc, err := loadDocument(newPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		return 2
	}
	d := computeDiff(oldDoc, newDoc, *threshold)
	writeDiff(os.Stdout, d, oldPath, newPath)
	if regs := d.regressions(); len(regs) > 0 {
		fmt.Fprintf(os.Stderr, "benchjson: %d headline regression(s) above %.0f%%\n", len(regs), *threshold)
		return 1
	}
	fmt.Printf("\nno headline regressions above %.0f%%\n", *threshold)
	return 0
}
