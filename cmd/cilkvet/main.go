// Command cilkvet checks the repository's lock-free runtime invariants.
//
// It bundles five analyzers — atomicfield, deprecatedapi, epochbump,
// nocopy and unsafeword — documented in docs/STATIC_ANALYSIS.md.  The
// command runs in two modes:
//
// Standalone, over whole package patterns (the `make lint` entry point):
//
//	cilkvet ./...
//	cilkvet -epochbump.funcs='^MM\.Unregister$' ./internal/core
//
// As a go vet tool, one compiled package at a time:
//
//	go vet -vettool=$(which cilkvet) ./...
//
// In standalone mode the module and its dependencies are type-checked
// from source; nothing is executed and no build cache is needed.  In
// vettool mode cilkvet speaks cmd/go's unitchecker protocol: it imports
// dependencies from export data and carries cross-package doc-comment
// information (deprecations, //cilkvet:nocopy directives) between
// packages in its .vetx fact files.
//
// Exit status: 0 for a clean tree, 1 (standalone) or 2 (vettool) when
// findings are reported, 2 (standalone) for usage or load errors.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/analysis/load"
	"repro/internal/analysis/suite"
)

func main() {
	analyzers := suite.Analyzers()

	// Analyzer flags are exposed as -<analyzer>.<flag>, multichecker
	// style, in both modes.
	for _, a := range analyzers {
		a.Flags.VisitAll(func(f *flag.Flag) {
			flag.Var(f.Value, a.Name+"."+f.Name, f.Usage)
		})
	}
	versionFlag := flag.String("V", "", "print version and exit (go vet tool protocol)")
	flagsFlag := flag.Bool("flags", false, "print analyzer flags as JSON and exit (go vet tool protocol)")
	dirFlag := flag.String("C", ".", "directory to resolve package patterns in (standalone mode)")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: cilkvet [flags] packages...\n")
		fmt.Fprintf(flag.CommandLine.Output(), "       cilkvet config.cfg  (go vet tool protocol)\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	switch {
	case *versionFlag != "":
		printVersion(*versionFlag)
		return
	case *flagsFlag:
		printFlagsJSON()
		return
	}

	args := flag.Args()
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		os.Exit(vetUnit(args[0], analyzers))
	}
	if len(args) == 0 {
		flag.Usage()
		os.Exit(2)
	}

	findings, err := load.Run(*dirFlag, args, analyzers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cilkvet: %v\n", err)
		os.Exit(2)
	}
	for _, f := range findings {
		fmt.Println(f.String())
	}
	if len(findings) > 0 {
		os.Exit(1)
	}
}
