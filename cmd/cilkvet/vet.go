// The go vet tool protocol: cmd/go probes the tool with -V=full and
// -flags, then invokes it once per compiled package with a JSON .cfg file
// describing sources, the import map and fact-file locations.  This file
// is a self-contained reimplementation of the slice of
// golang.org/x/tools/go/analysis/unitchecker the suite needs, with the
// module doc-comment index (deprecations, //cilkvet:nocopy) serialized
// through the .vetx fact files.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"strings"

	"repro/internal/analysis/framework"
)

// printVersion answers the -V probe.  cmd/go demands the form
// "name version ..." and uses the full line as the tool's build ID, so
// the executable's content hash keeps vet results correctly cached.
func printVersion(mode string) {
	progname := filepath.Base(os.Args[0])
	if mode != "full" {
		fmt.Printf("%s version devel\n", progname)
		return
	}
	h := sha256.New()
	if f, err := os.Open(os.Args[0]); err == nil {
		_, _ = io.Copy(h, f)
		f.Close()
	}
	fmt.Printf("%s version devel buildID=%x\n", progname, h.Sum(nil)[:16])
}

// printFlagsJSON answers the -flags probe: the set of flags cmd/go may
// forward from the go vet command line.
func printFlagsJSON() {
	type jsonFlag struct {
		Name  string
		Bool  bool
		Usage string
	}
	var out []jsonFlag
	flag.VisitAll(func(f *flag.Flag) {
		b, ok := f.Value.(interface{ IsBoolFlag() bool })
		out = append(out, jsonFlag{f.Name, ok && b.IsBoolFlag(), f.Usage})
	})
	data, err := json.Marshal(out)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cilkvet: -flags: %v\n", err)
		os.Exit(1)
	}
	os.Stdout.Write(data)
	fmt.Println()
}

// vetConfig is the subset of cmd/go's vet configuration file the tool
// consumes.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// vetxPayload is what cilkvet stores in its .vetx fact files: the
// doc-comment index for the package and everything it imports, so
// indirect dependencies' deprecations survive even when cmd/go only
// hands us direct imports' fact files.
type vetxPayload struct {
	Deprecated []deprecatedFact
	NoCopy     []objFact
}

type deprecatedFact struct {
	Pkg, Name, Msg string
}

type objFact struct {
	Pkg, Name string
}

// vetUnit checks one compiled package per the protocol and returns the
// process exit code: 0 clean, 2 findings (the exit code cmd/vet uses).
func vetUnit(cfgPath string, analyzers []*framework.Analyzer) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cilkvet: %v\n", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "cilkvet: parsing %s: %v\n", cfgPath, err)
		return 1
	}

	// Merge the fact files of every dependency cmd/go handed us.
	index := framework.NewModuleIndex()
	for _, vetx := range cfg.PackageVetx {
		if err := readVetx(vetx, index); err != nil {
			fmt.Fprintf(os.Stderr, "cilkvet: %v\n", err)
			return 1
		}
	}

	fset := token.NewFileSet()
	files := make([]*ast.File, 0, len(cfg.GoFiles))
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return writeVetx(cfg.VetxOutput, index)
			}
			fmt.Fprintf(os.Stderr, "cilkvet: %v\n", err)
			return 1
		}
		files = append(files, f)
	}
	pkgPath := cfg.ImportPath
	if i := strings.Index(pkgPath, " ["); i >= 0 {
		pkgPath = pkgPath[:i]
	}
	index.IndexFiles(pkgPath, files)

	if cfg.VetxOnly {
		// Dependency run: cmd/go only wants the facts.
		return writeVetx(cfg.VetxOutput, index)
	}

	compiler := cfg.Compiler
	if compiler == "" {
		compiler = "gc"
	}
	//cilkvet:allow deprecatedapi -- the deprecation covers nil-lookup use only; we pass an explicit lookup
	gcImporter := importer.ForCompiler(fset, compiler, func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	conf := types.Config{
		Sizes: types.SizesFor(compiler, envOr("GOARCH", runtime.GOARCH)),
		Importer: importerFunc(func(path string) (*types.Package, error) {
			if mapped, ok := cfg.ImportMap[path]; ok {
				path = mapped
			}
			if path == "unsafe" {
				return types.Unsafe, nil
			}
			return gcImporter.Import(path)
		}),
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Instances:  make(map[*ast.Ident]types.Instance),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	tpkg, err := conf.Check(pkgPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return writeVetx(cfg.VetxOutput, index)
		}
		fmt.Fprintf(os.Stderr, "cilkvet: type-checking %s: %v\n", cfg.ImportPath, err)
		return 1
	}

	exit := 0
	sup := framework.CollectSuppressions(fset, files)
	for _, d := range sup.Malformed {
		fmt.Fprintf(os.Stderr, "%s: suppression: %s\n", fset.Position(d.Pos), d.Message)
		exit = 2
	}
	for _, a := range analyzers {
		pass := &framework.Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     files,
			Pkg:       tpkg,
			TypesInfo: info,
			Module:    index,
			Report: func(d framework.Diagnostic) {
				pos := fset.Position(d.Pos)
				if sup.Allows(a.Name, pos) {
					return
				}
				fmt.Fprintf(os.Stderr, "%s: %s: %s\n", pos, a.Name, d.Message)
				exit = 2
			},
		}
		if err := a.Run(pass); err != nil {
			fmt.Fprintf(os.Stderr, "cilkvet: analyzer %s on %s: %v\n", a.Name, cfg.ImportPath, err)
			return 1
		}
	}
	if code := writeVetx(cfg.VetxOutput, index); code != 0 {
		return code
	}
	return exit
}

// readVetx merges one fact file into the index.  A missing or empty file
// is fine: it was written by a run that had nothing to record, or by a
// different tool chained into the same vet invocation.
func readVetx(path string, index *framework.ModuleIndex) error {
	data, err := os.ReadFile(path)
	if err != nil || len(data) == 0 {
		return nil
	}
	var payload vetxPayload
	if err := json.Unmarshal(data, &payload); err != nil {
		return nil // not ours; ignore
	}
	for _, d := range payload.Deprecated {
		index.Deprecated[framework.ObjKey{Pkg: d.Pkg, Name: d.Name}] = d.Msg
	}
	for _, n := range payload.NoCopy {
		index.NoCopy[framework.ObjKey{Pkg: n.Pkg, Name: n.Name}] = true
	}
	return nil
}

// writeVetx persists the accumulated index for dependents.
func writeVetx(path string, index *framework.ModuleIndex) int {
	if path == "" {
		return 0
	}
	var payload vetxPayload
	for k, msg := range index.Deprecated {
		payload.Deprecated = append(payload.Deprecated, deprecatedFact{k.Pkg, k.Name, msg})
	}
	for k := range index.NoCopy {
		payload.NoCopy = append(payload.NoCopy, objFact{k.Pkg, k.Name})
	}
	data, err := json.Marshal(payload)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cilkvet: encoding facts: %v\n", err)
		return 1
	}
	if err := os.WriteFile(path, data, 0o666); err != nil {
		fmt.Fprintf(os.Stderr, "cilkvet: %v\n", err)
		return 1
	}
	return 0
}

// envOr reads an environment variable with a fallback.
func envOr(key, fallback string) string {
	if v := os.Getenv(key); v != "" {
		return v
	}
	return fallback
}

type importerFunc func(string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
