// Command pbfs runs the parallel breadth-first search application on a
// synthetic graph and reports timing for the serial reference and for PBFS
// under both reducer mechanisms.
//
// Usage:
//
//	pbfs -graph rmat23 -scale 0.01 -workers 8 -source 0
//	pbfs -list
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	cilkm "repro"
	"repro/internal/graph"
	"repro/internal/metrics"
	"repro/internal/pbfs"
)

func main() {
	var (
		name    = flag.String("graph", "rmat23", "paper input name (see -list) or one of: path, star, grid3d, torus, rmat, random")
		scale   = flag.Float64("scale", 1.0/256, "graph scale relative to the paper's input sizes")
		size    = flag.Int("n", 1<<16, "vertex count for the generic generators (path, star, grid3d, torus, rmat, random)")
		workers = flag.Int("workers", 8, "worker count for the parallel runs")
		source  = flag.Int("source", 0, "BFS source vertex")
		grain   = flag.Int("grain", 128, "pennant grain size")
		seed    = flag.Int64("seed", 1, "generator seed")
		list    = flag.Bool("list", false, "list the paper's input graphs and exit")
	)
	flag.Parse()

	if *list {
		t := metrics.NewTable("Paper input graphs (Figure 10(b))", "name", "|V|", "|E|", "D", "lookups")
		for _, s := range graph.PaperInputs() {
			t.AddRow(s.Name, s.PaperVertices, s.PaperEdges, s.PaperDiameter, s.PaperLookups)
		}
		fmt.Print(t)
		return
	}

	g, err := buildGraph(*name, *scale, *size, *seed)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pbfs: %v\n", err)
		os.Exit(2)
	}
	st := g.ComputeStats()
	fmt.Printf("graph: %s  |V|=%d  |E|=%d  diameter=%d  reachable=%d\n",
		g.Name(), st.Vertices, st.Edges, st.Diameter, st.Reachable)

	start := time.Now()
	serial := pbfs.Serial(g, int32(*source))
	fmt.Printf("serial BFS: %v (%d layers, %d reachable)\n",
		time.Since(start).Round(time.Microsecond), serial.Layers, serial.Reachable)

	for _, mech := range cilkm.Mechanisms() {
		s := cilkm.New(cilkm.WithMechanism(mech), cilkm.WithWorkers(*workers), cilkm.WithCountLookups())
		start = time.Now()
		res, err := pbfs.Parallel(s, g, pbfs.Config{Source: int32(*source), Grain: *grain})
		elapsed := time.Since(start)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pbfs: %v: %v\n", mech, err)
			os.Exit(1)
		}
		if err := pbfs.Validate(g, int32(*source), res); err != nil {
			fmt.Fprintf(os.Stderr, "pbfs: %v: result mismatch: %v\n", mech, err)
			os.Exit(1)
		}
		fmt.Printf("PBFS (%-13s P=%d): %v  lookups=%d  steals=%d\n",
			mech.String()+",", *workers, elapsed.Round(time.Microsecond),
			s.Engine().Lookups(), s.Runtime().Stats().Steals)
		s.Close()
	}
}

func buildGraph(name string, scale float64, n int, seed int64) (*graph.Graph, error) {
	if spec, ok := graph.FindInput(name); ok {
		return spec.Build(scale, seed), nil
	}
	switch name {
	case "path":
		return graph.Path(n), nil
	case "star":
		return graph.Star(n), nil
	case "grid3d":
		side := 1
		for (side+1)*(side+1)*(side+1) <= n {
			side++
		}
		return graph.Grid3D(side, side, side), nil
	case "torus":
		side := 1
		for (side+1)*(side+1) <= n {
			side++
		}
		return graph.Torus2D(side), nil
	case "rmat":
		sc := 1
		for 1<<(sc+1) <= n {
			sc++
		}
		return graph.RMAT(sc, 16, 0.57, 0.19, 0.19, seed), nil
	case "random":
		return graph.Random(n, 8*n, seed), nil
	default:
		return nil, fmt.Errorf("unknown graph %q", name)
	}
}
