// Command cilkbench regenerates the tables and figures of the paper's
// evaluation (Section 8).  Each experiment prints a text table whose rows
// correspond to the clusters, bars or curves of the original figure.
//
// Usage:
//
//	cilkbench -experiment fig1|fig5a|fig5b|fig6|fig7|fig8|fig9|fig10|mergepipe|manyreducers|faultoverhead|service|all \
//	          [-workers N] [-lookups N] [-reps N] [-scale F] [-graphs a,b,c] [-rates r1,r2] [-quick]
//
// The service experiment is not a paper figure: it drives the resident
// multi-tenant Service with open-loop arrivals at each -rates value and
// reports request-latency percentiles, emitting the rows both as a table
// and as `go test -bench`-style lines for cmd/benchjson.
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/bench"
	"repro/internal/metrics"
)

func main() {
	var (
		experiment = flag.String("experiment", "all", "which figure to regenerate: fig1, fig5a, fig5b, fig6, fig7, fig8, fig9, fig10, mergepipe, manyreducers, faultoverhead, service, or all")
		workers    = flag.Int("workers", 0, "maximum worker count for parallel experiments (default 16)")
		lookups    = flag.Int("lookups", 0, "number of reducer lookups per microbenchmark run (default 2,000,000)")
		reps       = flag.Int("reps", 0, "repetitions per data point (default 3)")
		scale      = flag.Float64("scale", 0, "PBFS graph scale relative to the paper's inputs (default 1/128)")
		graphs     = flag.String("graphs", "", "comma-separated subset of PBFS inputs (default: all eight)")
		quick      = flag.Bool("quick", false, "use a very small configuration for a smoke run")
		seed       = flag.Int64("seed", 0, "workload seed")
		rates      = flag.String("rates", "", "comma-separated open-loop arrival rates in jobs/sec for the service experiment (default 200,1000,4000)")
		metricsAt  = flag.String("metrics-addr", "", "serve runtime metrics on this address while experiments run (e.g. :9090; Prometheus text at /metrics, ?format=expvar for JSON)")
	)
	flag.Parse()

	cfg := bench.DefaultConfig()
	if *quick {
		cfg = bench.QuickConfig()
	}
	if *workers > 0 {
		cfg.MaxWorkers = *workers
	}
	if *lookups > 0 {
		cfg.Lookups = *lookups
	}
	if *reps > 0 {
		cfg.Repetitions = *reps
	}
	if *scale > 0 {
		cfg.GraphScale = *scale
	}
	if *seed != 0 {
		cfg.Seed = *seed
	}
	var inputs []string
	if *graphs != "" {
		for _, g := range strings.Split(*graphs, ",") {
			if g = strings.TrimSpace(g); g != "" {
				inputs = append(inputs, g)
			}
		}
	}

	if *metricsAt != "" {
		exp := metrics.NewExporter()
		cfg.Exporter = exp
		mux := http.NewServeMux()
		mux.Handle("/metrics", exp)
		ln, err := net.Listen("tcp", *metricsAt)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cilkbench: metrics listener: %v\n", err)
			os.Exit(2)
		}
		fmt.Fprintf(os.Stderr, "cilkbench: serving metrics on http://%s/metrics\n", ln.Addr())
		go func() {
			if err := http.Serve(ln, mux); err != nil {
				fmt.Fprintf(os.Stderr, "cilkbench: metrics server: %v\n", err)
			}
		}()
	}

	want := strings.ToLower(*experiment)
	ran := 0
	for _, exp := range []struct {
		name string
		run  func() error
	}{
		{"fig1", func() error { return runFig1(cfg) }},
		{"fig5a", func() error { return runFig5(cfg, false) }},
		{"fig5b", func() error { return runFig5(cfg, true) }},
		{"fig6", func() error { return runFig6(cfg) }},
		{"fig7", func() error { return runFig7(cfg, true, false) }},
		{"fig8", func() error { return runFig7(cfg, false, true) }},
		{"fig9", func() error { return runFig9(cfg) }},
		{"fig10", func() error { return runFig10(cfg, inputs) }},
		{"mergepipe", func() error { return runMergePipe(cfg) }},
		{"manyreducers", func() error { return runManyReducers(cfg) }},
		{"faultoverhead", func() error { return runFaultOverhead(cfg) }},
		{"service", func() error { return runService(cfg, *rates) }},
	} {
		if want != "all" && want != exp.name {
			continue
		}
		// fig7 and fig8 come from the same instrumented runs; when running
		// "all", print both from one pass.
		if want == "all" && exp.name == "fig8" {
			continue
		}
		if want == "all" && exp.name == "fig7" {
			if err := runFig7(cfg, true, true); err != nil {
				fail(exp.name, err)
			}
			ran++
			continue
		}
		start := time.Now()
		if err := exp.run(); err != nil {
			fail(exp.name, err)
		}
		fmt.Printf("(%s completed in %v)\n\n", exp.name, time.Since(start).Round(time.Millisecond))
		ran++
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "cilkbench: unknown experiment %q\n", *experiment)
		flag.Usage()
		os.Exit(2)
	}
}

func fail(name string, err error) {
	fmt.Fprintf(os.Stderr, "cilkbench: %s: %v\n", name, err)
	os.Exit(1)
}

func runFig1(cfg bench.Config) error {
	res, err := bench.RunFig1(cfg)
	if err != nil {
		return err
	}
	fmt.Print(res.Table())
	fmt.Printf("memory-mapped lookups measured %.2fx faster than hypermap (paper: close to 4x)\n\n", res.MMFasterThanHypermap())
	return nil
}

func runFig5(cfg bench.Config, parallel bool) error {
	res, err := bench.RunFig5(cfg, parallel)
	if err != nil {
		return err
	}
	fmt.Print(res.Table())
	fmt.Printf("mean hypermap/memory-mapped ratio: %.2fx (paper: 4-9x serial, 3-9x parallel)\n\n", res.MeanRatio())
	return nil
}

func runFig6(cfg bench.Config) error {
	res, err := bench.RunFig6(cfg)
	if err != nil {
		return err
	}
	fmt.Print(res.Table())
	fmt.Println()
	return nil
}

func runFig7(cfg bench.Config, printFig7, printFig8 bool) error {
	res, err := bench.RunFig7(cfg)
	if err != nil {
		return err
	}
	if printFig7 {
		fmt.Print(res.Fig7Table())
		fmt.Println()
	}
	if printFig8 {
		fmt.Print(res.Fig8Table())
		fmt.Println()
	}
	return nil
}

func runFig9(cfg bench.Config) error {
	res, err := bench.RunFig9(cfg)
	if err != nil {
		return err
	}
	fmt.Print(res.Table())
	fmt.Println()
	return nil
}

func runMergePipe(cfg bench.Config) error {
	res, err := bench.RunMergePipeline(cfg)
	if err != nil {
		return err
	}
	fmt.Print(res.Table())
	fmt.Println()
	return nil
}

func runManyReducers(cfg bench.Config) error {
	res, err := bench.RunManyReducers(cfg)
	if err != nil {
		return err
	}
	fmt.Print(res.Table())
	fmt.Println()
	return nil
}

func runFaultOverhead(cfg bench.Config) error {
	res, err := bench.RunFaultOverhead(cfg)
	if err != nil {
		return err
	}
	fmt.Print(res.Table())
	fmt.Println()
	return nil
}

func runFig10(cfg bench.Config, inputs []string) error {
	res, err := bench.RunFig10(cfg, inputs)
	if err != nil {
		return err
	}
	fmt.Print(res.Fig10aTable())
	fmt.Println()
	fmt.Print(res.Fig10bTable())
	fmt.Println()
	return nil
}

func runService(cfg bench.Config, ratesArg string) error {
	var rates []int
	for _, r := range strings.Split(ratesArg, ",") {
		if r = strings.TrimSpace(r); r == "" {
			continue
		}
		n, err := strconv.Atoi(r)
		if err != nil || n <= 0 {
			return fmt.Errorf("bad -rates value %q", r)
		}
		rates = append(rates, n)
	}
	res, err := bench.RunServiceLatency(cfg, rates)
	if err != nil {
		return err
	}
	fmt.Print(res.Table())
	fmt.Println()
	fmt.Print(res.BenchLines())
	fmt.Println()
	return nil
}
