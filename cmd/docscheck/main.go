// Command docscheck is the repository's documentation lint, run by `make
// docs-check` (and CI).  It performs two checks and exits nonzero if
// either finds a problem:
//
//  1. Link check: every relative markdown link in the given files and
//     directories must resolve to an existing file (fragments are
//     stripped; absolute URLs and mailto links are skipped).
//  2. Doc check: every exported identifier in the given Go packages must
//     carry a doc comment — the revive/golint rule, applied here to the
//     public API packages so `go doc` output stays complete.
//
// Usage:
//
//	go run ./cmd/docscheck -md README.md,docs -pkgs .,./internal/reducers
package main

import (
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strings"
)

func main() {
	md := flag.String("md", "", "comma-separated markdown files or directories to link-check")
	pkgs := flag.String("pkgs", "", "comma-separated Go package directories to doc-check")
	flag.Parse()

	var problems []string
	for _, root := range splitList(*md) {
		problems = append(problems, checkMarkdown(root)...)
	}
	for _, dir := range splitList(*pkgs) {
		problems = append(problems, checkPackageDocs(dir)...)
	}
	for _, p := range problems {
		fmt.Fprintln(os.Stderr, p)
	}
	if len(problems) > 0 {
		fmt.Fprintf(os.Stderr, "docscheck: %d problem(s)\n", len(problems))
		os.Exit(1)
	}
	fmt.Println("docscheck: ok")
}

func splitList(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// mdLink matches [text](target); images ![alt](target) share the suffix.
// Targets containing spaces or parens are not used in this repo.
var mdLink = regexp.MustCompile(`\]\(([^)\s]+)\)`)

// inlineCode matches `code` spans, which can contain indexing expressions
// like NewAdd[int](x) that would otherwise look like markdown links.
var inlineCode = regexp.MustCompile("`[^`\n]*`")

// stripCode removes fenced code blocks and inline code spans so the link
// check only sees prose.
func stripCode(src string) string {
	var out strings.Builder
	inFence := false
	for _, line := range strings.Split(src, "\n") {
		if strings.HasPrefix(strings.TrimSpace(line), "```") {
			inFence = !inFence
			continue
		}
		if inFence {
			continue
		}
		out.WriteString(inlineCode.ReplaceAllString(line, "``"))
		out.WriteByte('\n')
	}
	return out.String()
}

// checkMarkdown link-checks one markdown file, or every *.md under a
// directory.
func checkMarkdown(root string) []string {
	var files []string
	info, err := os.Stat(root)
	if err != nil {
		return []string{fmt.Sprintf("docscheck: %v", err)}
	}
	if info.IsDir() {
		entries, err := os.ReadDir(root)
		if err != nil {
			return []string{fmt.Sprintf("docscheck: %v", err)}
		}
		for _, e := range entries {
			if !e.IsDir() && strings.HasSuffix(e.Name(), ".md") {
				files = append(files, filepath.Join(root, e.Name()))
			}
		}
	} else {
		files = []string{root}
	}

	var problems []string
	for _, file := range files {
		data, err := os.ReadFile(file)
		if err != nil {
			problems = append(problems, fmt.Sprintf("docscheck: %v", err))
			continue
		}
		for _, m := range mdLink.FindAllStringSubmatch(stripCode(string(data)), -1) {
			target := m[1]
			if strings.Contains(target, "://") || strings.HasPrefix(target, "mailto:") ||
				strings.HasPrefix(target, "#") {
				continue
			}
			if i := strings.IndexByte(target, '#'); i >= 0 {
				target = target[:i]
			}
			if target == "" {
				continue
			}
			resolved := filepath.Join(filepath.Dir(file), target)
			if _, err := os.Stat(resolved); err != nil {
				problems = append(problems, fmt.Sprintf("%s: broken relative link %q", file, m[1]))
			}
		}
	}
	return problems
}

// checkPackageDocs parses one package directory (tests excluded) and
// reports exported identifiers without doc comments.
func checkPackageDocs(dir string) []string {
	fset := token.NewFileSet()
	pkgMap, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return []string{fmt.Sprintf("docscheck: %s: %v", dir, err)}
	}

	var problems []string
	report := func(pos token.Pos, kind, name string) {
		p := fset.Position(pos)
		problems = append(problems, fmt.Sprintf("%s:%d: exported %s %s is undocumented", p.Filename, p.Line, kind, name))
	}
	for _, pkg := range pkgMap {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					if d.Name.IsExported() && exportedReceiver(d) && d.Doc == nil {
						kind := "function"
						if d.Recv != nil {
							kind = "method"
						}
						report(d.Pos(), kind, d.Name.Name)
					}
				case *ast.GenDecl:
					checkGenDecl(d, report)
				}
			}
		}
	}
	return problems
}

// exportedReceiver reports whether a function is package-level or a method
// on an exported type (methods on unexported types are not API surface).
func exportedReceiver(d *ast.FuncDecl) bool {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return true
	}
	t := d.Recv.List[0].Type
	for {
		switch tt := t.(type) {
		case *ast.StarExpr:
			t = tt.X
		case *ast.IndexExpr: // generic receiver T[P]
			t = tt.X
		case *ast.IndexListExpr: // generic receiver T[P1, P2]
			t = tt.X
		case *ast.Ident:
			return tt.IsExported()
		default:
			return true
		}
	}
}

// checkGenDecl walks a const/var/type declaration.  A doc comment on the
// grouped declaration documents every spec inside it — the Go convention
// for enum-style const blocks.
func checkGenDecl(d *ast.GenDecl, report func(token.Pos, string, string)) {
	kind := map[token.Token]string{token.CONST: "const", token.VAR: "var", token.TYPE: "type"}[d.Tok]
	if kind == "" {
		return // imports
	}
	for _, spec := range d.Specs {
		switch s := spec.(type) {
		case *ast.TypeSpec:
			if s.Name.IsExported() && s.Doc == nil && d.Doc == nil {
				report(s.Pos(), kind, s.Name.Name)
			}
		case *ast.ValueSpec:
			for _, name := range s.Names {
				if name.IsExported() && s.Doc == nil && s.Comment == nil && d.Doc == nil {
					report(name.Pos(), kind, name.Name)
				}
			}
		}
	}
}
