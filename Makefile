GO ?= go

.PHONY: build vet test race bench ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# race exercises the Chase–Lev deque's memory-ordering assumptions (the
# concurrent stress tests in internal/sched) and the reducer engines under
# the race detector.  Run it on every scheduler change.
race:
	$(GO) test -race ./internal/sched/... ./internal/core/...

# bench runs the scheduler microbenchmarks: the allocation-free fork fast
# path (expect 0 allocs/op on BenchmarkForkNoSteal), steal throughput, and
# the fib fork-stress test.
bench:
	$(GO) test -run NONE -bench 'ForkNoSteal|StealThroughput|ParallelFor|Fib' -benchmem ./internal/sched/

ci: build vet test race
