GO ?= go
BENCH_OUT ?= BENCH_pr10.json
BENCH_BASE ?= BENCH_pr8.json
CHAOS_SEEDS ?= 6
CILKVET ?= bin/cilkvet

.PHONY: build vet vet-unsafe lint lint-deprecated cilkvet check-binaries inline-check test race chaos chaos-service bench bench-directory bench-typed bench-spa bench-lookup bench-json bench-diff docs-check fmt-check ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# vet-unsafe runs only the unsafeptr analyzer, explicitly, as the gate for
# the word-packed SPA slot representation (unsafe.Pointer view words and
# flag-tagged owner stamps).  Plain `go vet` includes unsafeptr too, but a
# future analyzer-flag tweak to the main vet target must not silently drop
# the one check the unsafe code depends on.
vet-unsafe:
	$(GO) vet -unsafeptr ./...

# cilkvet builds the repo's own analysis suite (cmd/cilkvet): five
# analyzers over the lock-free runtime's invariants, documented in
# docs/STATIC_ANALYSIS.md.  The binary also speaks the go vet tool
# protocol, so CI caches it and `go vet -vettool=bin/cilkvet` works.
cilkvet:
	$(GO) build -o $(CILKVET) ./cmd/cilkvet

# lint runs the cilkvet suite over the whole module plus the unsafeptr vet
# gate for the word-packed slot representation (formerly the separate
# vet-unsafe target).  The tree must come back clean: every exception is
# an explicit //cilkvet:allow comment with a justification.
lint: cilkvet vet-unsafe
	$(CILKVET) -C . ./...

# lint-deprecated is kept as an alias for the retired grep target; the
# deprecatedapi analyzer inside cilkvet replaced it (it reads Deprecated:
# doc paragraphs instead of a hard-coded shim list).
lint-deprecated: lint

# check-binaries fails when a compiled test binary is tracked by git (a
# 4.6 MB core.test once slipped into the tree).
check-binaries:
	@out=$$(git ls-files '*.test'); \
	if [ -n "$$out" ]; then \
		echo "committed test binaries (add to .gitignore and git rm):"; echo "$$out"; exit 1; \
	fi

# inline-check pins the compiler's inlining decisions for the typed-lookup
# fast path (slot probe, owner-stamp check, bucket-head probe, epoch and
# worker-id accessors).  A helper growing past the inlining budget would
# silently turn the single-deref steady-state hit into a call chain; this
# greps -gcflags=-m and fails when any pinned decision is gone.
inline-check:
	@GO="$(GO)" sh scripts/inline_check.sh

test:
	$(GO) test ./...

# race exercises the Chase–Lev deque's memory-ordering assumptions (the
# concurrent stress tests in internal/sched) and the reducer engines under
# the race detector.  Run it on every scheduler change.
race:
	$(GO) test -race ./internal/sched/... ./internal/core/...

# chaos runs the fault-injection sweep under the race detector: every
# compiled-in failpoint × CHAOS_SEEDS seeded schedules × both engines, the
# failure-containment regression tests (reduce-panic resource conservation,
# context-cancellation settlement), and the Close-vs-Run race.  Widen with
# CHAOS_SEEDS=n.
chaos:
	CHAOS_SEEDS=$(CHAOS_SEEDS) $(GO) test -race -count=1 \
		-run 'TestChaosSweep$$|TestReducePanicConservesResources|TestRunContextCancelSettles' .
	$(GO) test -race -count=1 -run 'TestCloseRacingRun' ./internal/sched/

# chaos-service runs the multi-tenant sweep under the race detector: N
# concurrent submitters × the service failpoints (admission, dispatch,
# deadline, drain) plus engine faults re-run under concurrent submission,
# asserting per-job containment and pool-wide quiescence after drain, with
# the Close-vs-Submit race alongside.  Widened seeds by default: the
# interesting interleavings here come from the seed × submitter product.
chaos-service:
	CHAOS_SEEDS=$(CHAOS_SEEDS) $(GO) test -race -count=1 -timeout 20m \
		-run 'TestChaosServiceSweep' .
	$(GO) test -race -count=1 -run 'TestServiceCloseRacingSubmit' ./internal/sched/

# bench runs the scheduler microbenchmarks: the allocation-free fork fast
# path (expect 0 allocs/op on BenchmarkForkNoSteal), steal throughput, and
# the fib fork-stress test.
bench:
	$(GO) test -run NONE -bench 'ForkNoSteal|StealThroughput|ParallelFor|Fib' -benchmem ./internal/sched/

# bench-directory runs the sharded reducer-directory microbenchmarks at 8
# procs: concurrent register churn and growth against the seed single-mutex
# baseline, and the lookup fast path at small vs 1e5-live populations.
bench-directory:
	$(GO) test -run NONE -bench 'RegisterChurn|RegisterGrowth|MMLookup4Live|MMLookup100kLive' \
		-benchmem -benchtime=0.5s -cpu 8 ./internal/core/

# bench-typed runs the typed-vs-boxed reducer update microbenchmarks: the
# generics-first Handle path (expect 0 allocs/op and fewer ns/op than the
# Boxed* seed-replica baselines on both engines), including the rotating
# case where the handle-side cache beats the engine-side cache outright.
bench-typed:
	$(GO) test -run NONE -bench 'TypedAdd|BoxedAdd|TypedList|BoxedList' \
		-benchmem -benchtime=0.5s ./internal/reducers/

# bench-spa runs the word-packed SPA storage benchmarks: the post-steal
# first lookup (arena vs heap view creation — expect 0 allocs/op on the
# arena path), the steady-state typed update (expect 0 allocs/op), and the
# hypermerge at 0%/50%/100% written views (elided slots must show zero
# reduce calls and zero pagepool round-trips at 0%).
bench-spa:
	$(GO) test -run NONE -bench 'FirstLookup|MergeWritten' \
		-benchmem -benchtime=0.5s ./internal/core/
	$(GO) test -run NONE -bench 'TypedAdd' \
		-benchmem -benchtime=0.5s ./internal/reducers/

# bench-lookup runs the steady-state typed-lookup benchmark against the raw
# per-worker []V array-index floor on both engines and records the numbers
# as a perf-trajectory artifact (BENCH_LOOKUP_OUT).  The acceptance bar for
# the devirtualized fast path is TypedLookupSteadyState within 1.5x of
# RawSliceIndexBaseline; -count=5 because single runs on shared machines
# are noisy (the diff tool aggregates by min).
BENCH_LOOKUP_OUT ?= BENCH_lookup.json
bench-lookup:
	@$(GO) test -run NONE -bench 'TypedLookupSteadyState|RawSliceIndexBaseline' \
		-benchmem -benchtime=0.5s -count=5 \
		./internal/reducers/ > $(BENCH_LOOKUP_OUT).txt 2>&1 \
		|| { cat $(BENCH_LOOKUP_OUT).txt; rm -f $(BENCH_LOOKUP_OUT).txt; exit 1; }
	@$(GO) run ./cmd/benchjson -out $(BENCH_LOOKUP_OUT) < $(BENCH_LOOKUP_OUT).txt
	@cat $(BENCH_LOOKUP_OUT).txt
	@rm -f $(BENCH_LOOKUP_OUT).txt

# bench-json runs the sched, core and typed-reducer microbenchmarks
# (fork/steal, lookup, merge pipeline, directory registration, typed vs
# boxed update paths) plus the open-loop service-latency experiment and
# records them as a machine-readable perf-trajectory artifact.  Numbers are advisory — the target fails only
# on build or run errors, never on regressions.  The go test output goes
# through a file rather than a pipe so its exit status is checked (a plain
# pipe would let a broken benchmark build slip through with the converter's
# status).  The directory benchmarks run at -cpu 8 so the artifact records
# the concurrent-registration scaling.
bench-json:
	@$(GO) test -run NONE -bench 'ForkNoSteal|StealThroughput|Lookup|Merge' \
		-benchmem -benchtime=0.5s -count=3 \
		./internal/sched/ ./internal/core/ > $(BENCH_OUT).txt 2>&1 \
		|| { cat $(BENCH_OUT).txt; rm -f $(BENCH_OUT).txt; exit 1; }
	@$(GO) test -run NONE -bench 'RegisterChurn|RegisterGrowth' \
		-benchmem -benchtime=0.5s -count=3 -cpu 8 \
		./internal/core/ >> $(BENCH_OUT).txt 2>&1 \
		|| { cat $(BENCH_OUT).txt; rm -f $(BENCH_OUT).txt; exit 1; }
	@$(GO) test -run NONE -bench 'TypedAdd|BoxedAdd|TypedList|BoxedList|TypedLookupSteadyState|RawSliceIndexBaseline' \
		-benchmem -benchtime=0.5s -count=3 \
		./internal/reducers/ >> $(BENCH_OUT).txt 2>&1 \
		|| { cat $(BENCH_OUT).txt; rm -f $(BENCH_OUT).txt; exit 1; }
	@$(GO) run ./cmd/cilkbench -experiment service -quick \
		>> $(BENCH_OUT).txt 2>&1 \
		|| { cat $(BENCH_OUT).txt; rm -f $(BENCH_OUT).txt; exit 1; }
	@$(GO) run ./cmd/benchjson -out $(BENCH_OUT) < $(BENCH_OUT).txt
	@rm -f $(BENCH_OUT).txt

# bench-diff compares two committed perf-trajectory artifacts and fails on
# >10% ns/op regressions in the headline benchmarks (fork, steal, lookup,
# merge, first-lookup).  CI runs it as an advisory step; the committed
# BENCH_pr*.json trajectory is the record of truth.  Override the pair with
# BENCH_BASE/BENCH_OUT.
bench-diff:
	$(GO) run ./cmd/benchjson diff $(BENCH_BASE) $(BENCH_OUT)

# docs-check is the documentation lint: broken relative links in README.md
# and docs/, and undocumented exported identifiers in the public facade
# packages (the repo root and internal/reducers).
docs-check:
	$(GO) run ./cmd/docscheck -md README.md,docs -pkgs .,./internal/reducers

# fmt-check fails when any file is not gofmt-clean, printing the offenders.
fmt-check:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

ci: build fmt-check vet lint check-binaries inline-check docs-check test race
