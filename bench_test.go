// Benchmarks that regenerate the paper's tables and figures as testing.B
// benchmarks, one benchmark (with sub-benchmarks for its clusters) per
// figure.  The cilkbench command produces the full tables; these benchmarks
// provide the same measurements in `go test -bench` form so they integrate
// with standard Go tooling (benchstat, -benchmem, CI regression tracking).
//
//	go test -bench=Fig1 .          # Figure 1: lookup overhead vs L1 access
//	go test -bench=Fig5 .          # Figure 5: microbenchmark execution times
//	go test -bench=Fig6 .          # Figure 6: lookup overhead vs reducer count
//	go test -bench=Fig7 .          # Figure 7: reduce overhead (parallel)
//	go test -bench=Fig8 .          # Figure 8: reduce-overhead breakdown
//	go test -bench=Fig9 .          # Figure 9: speedup of add-n
//	go test -bench=Fig10 .         # Figure 10: PBFS on the input graphs
package cilkm_test

import (
	"fmt"
	"testing"

	cilkm "repro"
	"repro/internal/graph"
	"repro/internal/locking"
	"repro/internal/metrics"
	"repro/internal/pbfs"
	"repro/internal/reducers"
)

// benchWorkers is the worker count used by the parallel benchmarks; the
// paper uses 16, which oversubscribes small hosts but remains meaningful
// for overhead measurements.
const benchWorkers = 8

// addLoop performs b.N reducer additions spread over n add reducers.
func addLoop(b *testing.B, s *cilkm.Session, n int) {
	b.Helper()
	sums := make([]*reducers.Add[int64], n)
	for i := range sums {
		sums[i] = cilkm.NewAdd[int64](s.Engine())
	}
	b.ResetTimer()
	err := s.Run(func(c *cilkm.Context) {
		c.ParallelForGrain(0, b.N, 4096, func(c *cilkm.Context, i int) {
			sums[i&(n-1)].Add(c, 1)
		})
	})
	b.StopTimer()
	if err != nil {
		b.Fatal(err)
	}
	var total int64
	for _, sr := range sums {
		total += sr.Value()
		sr.Close()
	}
	if total != int64(b.N) {
		b.Fatalf("sum = %d, want %d", total, b.N)
	}
}

// minLoop performs b.N min-reducer updates spread over n reducers.
func minLoop(b *testing.B, s *cilkm.Session, n int) {
	b.Helper()
	mins := make([]*reducers.Min[uint64], n)
	for i := range mins {
		mins[i] = cilkm.NewMin[uint64](s.Engine())
	}
	b.ResetTimer()
	err := s.Run(func(c *cilkm.Context) {
		c.ParallelForGrain(0, b.N, 4096, func(c *cilkm.Context, i int) {
			v := uint64(i)*2654435761 + 12345
			mins[i&(n-1)].Update(c, v)
		})
	})
	b.StopTimer()
	if err != nil {
		b.Fatal(err)
	}
	for _, r := range mins {
		r.Close()
	}
}

// maxLoop performs b.N max-reducer updates spread over n reducers.
func maxLoop(b *testing.B, s *cilkm.Session, n int) {
	b.Helper()
	maxs := make([]*reducers.Max[uint64], n)
	for i := range maxs {
		maxs[i] = cilkm.NewMax[uint64](s.Engine())
	}
	b.ResetTimer()
	err := s.Run(func(c *cilkm.Context) {
		c.ParallelForGrain(0, b.N, 4096, func(c *cilkm.Context, i int) {
			v := uint64(i)*2654435761 + 12345
			maxs[i&(n-1)].Update(c, v)
		})
	})
	b.StopTimer()
	if err != nil {
		b.Fatal(err)
	}
	for _, r := range maxs {
		r.Close()
	}
}

// baseLoop performs b.N plain array updates (the add-base workload and the
// L1 baseline of Figure 1).
func baseLoop(b *testing.B, s *cilkm.Session, n int) {
	b.Helper()
	type padded struct {
		v int64
		_ [56]byte
	}
	cells := make([]padded, n)
	b.ResetTimer()
	err := s.Run(func(c *cilkm.Context) {
		c.ParallelForGrain(0, b.N, 4096, func(_ *cilkm.Context, i int) {
			cells[i&(n-1)].v++
		})
	})
	b.StopTimer()
	if err != nil {
		b.Fatal(err)
	}
}

// BenchmarkFig1LookupOverhead measures the per-update cost of the four bars
// of Figure 1 on a single worker: an ordinary L1 memory access, a
// memory-mapped reducer, a hypermap reducer, and a spin lock per location.
func BenchmarkFig1LookupOverhead(b *testing.B) {
	const nLocations = 4
	b.Run("L1-memory", func(b *testing.B) {
		s := cilkm.NewSession(cilkm.MemoryMapped, 1)
		defer s.Close()
		baseLoop(b, s, nLocations)
	})
	b.Run("memory-mapped", func(b *testing.B) {
		s := cilkm.NewSession(cilkm.MemoryMapped, 1)
		defer s.Close()
		addLoop(b, s, nLocations)
	})
	b.Run("hypermap", func(b *testing.B) {
		s := cilkm.NewSession(cilkm.Hypermap, 1)
		defer s.Close()
		addLoop(b, s, nLocations)
	})
	b.Run("locking", func(b *testing.B) {
		s := cilkm.NewSession(cilkm.MemoryMapped, 1)
		defer s.Close()
		arr := locking.NewArray(nLocations)
		b.ResetTimer()
		err := s.Run(func(c *cilkm.Context) {
			c.ParallelForGrain(0, b.N, 4096, func(_ *cilkm.Context, i int) {
				arr.Add(i&(nLocations-1), 1)
			})
		})
		if err != nil {
			b.Fatal(err)
		}
	})
}

// fig5Cases is the sweep used by the Figure 5 benchmarks (a subset of the
// paper's n values keeps `go test -bench` runtimes reasonable; the
// cilkbench command sweeps all of them).
var fig5Cases = []int{4, 64, 1024}

// BenchmarkFig5aSerial measures the add/min/max-n microbenchmarks on a
// single worker under both mechanisms (Figure 5(a)).
func BenchmarkFig5aSerial(b *testing.B) {
	benchmarkFig5(b, 1)
}

// BenchmarkFig5bParallel measures the same microbenchmarks on multiple
// workers (Figure 5(b)).
func BenchmarkFig5bParallel(b *testing.B) {
	benchmarkFig5(b, benchWorkers)
}

func benchmarkFig5(b *testing.B, workers int) {
	kinds := []struct {
		name string
		run  func(*testing.B, *cilkm.Session, int)
	}{
		{"add", addLoop},
		{"min", minLoop},
		{"max", maxLoop},
	}
	for _, kind := range kinds {
		for _, n := range fig5Cases {
			for _, mech := range []cilkm.Mechanism{cilkm.MemoryMapped, cilkm.Hypermap} {
				name := fmt.Sprintf("%s-%d/%s", kind.name, n, mech)
				b.Run(name, func(b *testing.B) {
					s := cilkm.NewSession(mech, workers)
					defer s.Close()
					kind.run(b, s, n)
				})
			}
		}
	}
}

// BenchmarkFig6LookupOverhead measures the per-lookup overhead of both
// mechanisms against the add-base baseline as the reducer count grows
// (Figure 6).  The "base" sub-benchmark is the quantity subtracted in the
// figure.
func BenchmarkFig6LookupOverhead(b *testing.B) {
	for _, n := range []int{4, 16, 64, 256, 1024} {
		b.Run(fmt.Sprintf("add-base-%d", n), func(b *testing.B) {
			s := cilkm.NewSession(cilkm.MemoryMapped, 1)
			defer s.Close()
			baseLoop(b, s, n)
		})
		for _, mech := range []cilkm.Mechanism{cilkm.MemoryMapped, cilkm.Hypermap} {
			b.Run(fmt.Sprintf("add-%d/%s", n, mech), func(b *testing.B) {
				s := cilkm.NewSession(mech, 1)
				defer s.Close()
				addLoop(b, s, n)
			})
		}
	}
}

// BenchmarkFig7ReduceOverhead runs add-n on multiple workers with runtime
// instrumentation enabled and reports the reduce overhead (view creation +
// insertion + transferal + hypermerge) per steal, the quantity Figure 7
// compares across mechanisms.
func BenchmarkFig7ReduceOverhead(b *testing.B) {
	for _, n := range []int{4, 64, 1024} {
		for _, mech := range []cilkm.Mechanism{cilkm.MemoryMapped, cilkm.Hypermap} {
			b.Run(fmt.Sprintf("add-%d/%s", n, mech), func(b *testing.B) {
				s := cilkm.NewSessionWithOptions(mech, benchWorkers, cilkm.EngineOptions{Timing: true})
				defer s.Close()
				s.Engine().ResetOverheads()
				s.Runtime().ResetStats()
				addLoop(b, s, n)
				ovh := s.Engine().Overheads()
				steals := s.Runtime().Stats().Steals
				b.ReportMetric(float64(ovh.Total().Nanoseconds()), "reduce-ns")
				if steals > 0 {
					b.ReportMetric(float64(ovh.Total().Nanoseconds())/float64(steals), "reduce-ns/steal")
				}
				b.ReportMetric(float64(steals), "steals")
			})
		}
	}
}

// BenchmarkFig8OverheadBreakdown runs add-n on the memory-mapped mechanism
// and reports the four overhead categories of Figure 8 as custom metrics.
func BenchmarkFig8OverheadBreakdown(b *testing.B) {
	for _, n := range []int{4, 64, 1024} {
		b.Run(fmt.Sprintf("add-%d", n), func(b *testing.B) {
			s := cilkm.NewSessionWithOptions(cilkm.MemoryMapped, benchWorkers, cilkm.EngineOptions{Timing: true})
			defer s.Close()
			s.Engine().ResetOverheads()
			addLoop(b, s, n)
			ovh := s.Engine().Overheads()
			b.ReportMetric(float64(ovh.Duration(metrics.ViewCreation).Nanoseconds()), "view-creation-ns")
			b.ReportMetric(float64(ovh.Duration(metrics.ViewInsertion).Nanoseconds()), "view-insertion-ns")
			b.ReportMetric(float64(ovh.Duration(metrics.Hypermerge).Nanoseconds()), "hypermerge-ns")
			b.ReportMetric(float64(ovh.Duration(metrics.ViewTransferal).Nanoseconds()), "view-transferal-ns")
		})
	}
}

// BenchmarkFig9Speedup runs add-1024 on the memory-mapped mechanism for the
// worker counts of Figure 9; comparing ns/op across sub-benchmarks gives
// the speedup curves (meaningful only when the host has enough CPUs).
func BenchmarkFig9Speedup(b *testing.B) {
	for _, p := range []int{1, 2, 4, 8, 16} {
		b.Run(fmt.Sprintf("add-1024/P=%d", p), func(b *testing.B) {
			s := cilkm.NewSession(cilkm.MemoryMapped, p)
			defer s.Close()
			addLoop(b, s, 1024)
		})
	}
}

// BenchmarkFig10PBFS runs PBFS over small stand-ins for three of the
// paper's input graphs under both mechanisms, serially and in parallel
// (Figure 10); one iteration is one full BFS.
func BenchmarkFig10PBFS(b *testing.B) {
	for _, name := range []string{"rmat23", "grid3d200", "kkt_power"} {
		spec, ok := graph.FindInput(name)
		if !ok {
			b.Fatalf("unknown input %q", name)
		}
		g := spec.Build(1.0/512, 1)
		for _, mech := range []cilkm.Mechanism{cilkm.MemoryMapped, cilkm.Hypermap} {
			for _, p := range []int{1, benchWorkers} {
				b.Run(fmt.Sprintf("%s/%s/P=%d", name, mech, p), func(b *testing.B) {
					s := cilkm.NewSession(mech, p)
					defer s.Close()
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						res, err := pbfs.Parallel(s, g, pbfs.Config{Source: 0})
						if err != nil {
							b.Fatal(err)
						}
						if res.Reachable == 0 {
							b.Fatal("BFS reached nothing")
						}
					}
					b.ReportMetric(float64(g.NumVertices()), "vertices")
				})
			}
		}
	}
}
