// PBFS example: parallel breadth-first search over a synthetic power-law
// graph using a bag reducer for the frontier, the application benchmark
// from the paper's Section 8.
//
// Run it with:
//
//	go run ./examples/pbfs -scale 16 -edgefactor 8 -workers 8
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	cilkm "repro"
	"repro/internal/graph"
	"repro/internal/pbfs"
)

func main() {
	var (
		scale      = flag.Int("scale", 16, "log2 of the number of vertices in the R-MAT graph")
		edgeFactor = flag.Int("edgefactor", 8, "average number of edges per vertex")
		workers    = flag.Int("workers", 8, "number of workers")
		source     = flag.Int("source", 0, "BFS source vertex")
		seed       = flag.Int64("seed", 12345, "graph generator seed")
	)
	flag.Parse()

	fmt.Printf("generating R-MAT graph: 2^%d vertices, edge factor %d...\n", *scale, *edgeFactor)
	g := graph.RMAT(*scale, *edgeFactor, 0.57, 0.19, 0.19, *seed)
	st := g.ComputeStats()
	fmt.Printf("graph: |V|=%d |E|=%d diameter=%d reachable=%d\n",
		st.Vertices, st.Edges, st.Diameter, st.Reachable)

	// Serial reference.
	start := time.Now()
	serial := pbfs.Serial(g, int32(*source))
	fmt.Printf("serial BFS:              %10v  (%d layers)\n",
		time.Since(start).Round(time.Microsecond), serial.Layers)

	// PBFS under both reducer mechanisms.
	for _, mech := range cilkm.Mechanisms() {
		session := cilkm.New(cilkm.WithMechanism(mech), cilkm.WithWorkers(*workers), cilkm.WithCountLookups())
		start = time.Now()
		res, err := pbfs.Parallel(session, g, pbfs.Config{Source: int32(*source)})
		elapsed := time.Since(start)
		if err != nil {
			log.Fatalf("%v: %v", mech, err)
		}
		if err := pbfs.Validate(g, int32(*source), res); err != nil {
			log.Fatalf("%v: validation failed: %v", mech, err)
		}
		fmt.Printf("PBFS (%-13s P=%d): %10v  (%d reducer lookups, %d steals)\n",
			mech.String()+",", *workers, elapsed.Round(time.Microsecond),
			session.Engine().Lookups(), session.Runtime().Stats().Steals)
		session.Close()
	}
	fmt.Println("parallel distances match the serial BFS ✓")
}
