// Histogram example: compute summary statistics (count, sum, min, max and a
// bucketed histogram) over a stream of synthetic measurements in one
// parallel pass, using one reducer per statistic.
//
// It demonstrates combining several reducer types — add, min, max and a
// custom map-union reducer — in the same parallel region, which is exactly
// the situation where per-lookup overhead starts to matter and where the
// memory-mapping mechanism earns its keep.
//
// Run it with:
//
//	go run ./examples/histogram -n 5000000 -workers 8
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	cilkm "repro"
)

func main() {
	var (
		n       = flag.Int("n", 5_000_000, "number of synthetic measurements")
		workers = flag.Int("workers", 8, "number of workers")
		buckets = flag.Int("buckets", 20, "number of histogram buckets")
	)
	flag.Parse()

	session := cilkm.New(cilkm.WithWorkers(*workers))
	defer session.Close()
	eng := session.Engine()

	var (
		count = cilkm.NewAdd[int64](eng)
		sum   = cilkm.NewAdd[float64](eng)
		mini  = cilkm.NewMin[float64](eng)
		maxi  = cilkm.NewMax[float64](eng)
		hist  = cilkm.NewMapOf[int, int64](eng, func(a, b int64) int64 { return a + b })
	)

	// A deterministic synthetic "sensor": a noisy sawtooth in [0, 100).
	sample := func(i int) float64 {
		x := uint64(i)*6364136223846793005 + 1442695040888963407
		x ^= x >> 33
		return float64(x%10000) / 100.0
	}

	start := time.Now()
	err := session.Run(func(c *cilkm.Context) {
		c.ParallelFor(0, *n, func(c *cilkm.Context, i int) {
			v := sample(i)
			count.Add(c, 1)
			sum.Add(c, v)
			mini.Update(c, v)
			maxi.Update(c, v)
			hist.Update(c, int(v)*(*buckets)/100, 1)
		})
	})
	if err != nil {
		log.Fatalf("run failed: %v", err)
	}
	elapsed := time.Since(start)

	mn, _ := mini.Value()
	mx, _ := maxi.Value()
	fmt.Printf("samples: %d   elapsed: %v on %d workers\n", count.Value(), elapsed.Round(time.Millisecond), *workers)
	fmt.Printf("mean: %.3f   min: %.2f   max: %.2f\n", sum.Value()/float64(count.Value()), mn, mx)

	h := hist.Value()
	var total int64
	for _, c := range h {
		total += c
	}
	if total != int64(*n) {
		log.Fatalf("histogram total %d does not match sample count %d", total, *n)
	}
	fmt.Println("histogram:")
	for b := 0; b < *buckets; b++ {
		cnt := h[b]
		bar := int(cnt * 50 * int64(*buckets) / int64(*n))
		fmt.Printf("  [%3d-%3d) %8d ", b*100 / *buckets, (b+1)*100 / *buckets, cnt)
		for i := 0; i < bar; i++ {
			fmt.Print("#")
		}
		fmt.Println()
	}
}
