// Quickstart: sum the integers 1..N in parallel with an add reducer.
//
// The reducer guarantees that the result equals the serial sum even though
// updates happen on logically parallel branches, and — with the
// memory-mapped mechanism — each update costs little more than an ordinary
// memory access.
//
// Run it with:
//
//	go run ./examples/quickstart -n 10000000 -workers 8 -mechanism memory-mapped
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	cilkm "repro"
)

func main() {
	var (
		n         = flag.Int("n", 10_000_000, "how many integers to sum")
		workers   = flag.Int("workers", 8, "number of workers")
		mechanism = flag.String("mechanism", "memory-mapped", "reducer mechanism: memory-mapped or hypermap")
	)
	flag.Parse()

	mech := cilkm.MemoryMapped
	if *mechanism == "hypermap" {
		mech = cilkm.Hypermap
	}

	// A Session couples a work-stealing scheduler with a reducer engine.
	session := cilkm.New(cilkm.WithMechanism(mech), cilkm.WithWorkers(*workers))
	defer session.Close()

	// Register an integer sum reducer with the session's engine.
	total := cilkm.NewAdd[int64](session.Engine())

	start := time.Now()
	err := session.Run(func(c *cilkm.Context) {
		// ParallelFor divides [1, n+1) across the workers the same way
		// cilk_for does; every branch updates its own local view of the
		// reducer, and the runtime folds the views together at the joins.
		c.ParallelFor(1, *n+1, func(c *cilkm.Context, i int) {
			total.Add(c, int64(i))
		})
	})
	if err != nil {
		log.Fatalf("run failed: %v", err)
	}
	elapsed := time.Since(start)

	want := int64(*n) * int64(*n+1) / 2
	fmt.Printf("mechanism: %s\n", session.Engine().Name())
	fmt.Printf("sum(1..%d) = %d (expected %d)\n", *n, total.Value(), want)
	fmt.Printf("workers: %d, elapsed: %v, steals: %d\n",
		*workers, elapsed.Round(time.Millisecond), session.Runtime().Stats().Steals)
	if total.Value() != want {
		log.Fatal("result does not match the serial sum")
	}
}
