// Treewalk reproduces the motivating example from the paper's Figure 2: a
// parallel walk of a binary tree that collects every node satisfying a
// property into a list.
//
// With an ordinary list this code would have a determinacy race; with a
// list-append reducer the output is guaranteed to be identical to the
// serial walk — the same nodes in the same order — no matter how the work
// gets stolen.
//
// Run it with:
//
//	go run ./examples/treewalk -depth 20 -workers 8
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"time"

	cilkm "repro"
)

// node is one node of the binary tree.
type node struct {
	value       int
	left, right *node
}

// build creates a random binary tree with 2^depth - 1 nodes.
func build(depth int, rng *rand.Rand) *node {
	if depth == 0 {
		return nil
	}
	return &node{
		value: rng.Intn(1000),
		left:  build(depth-1, rng),
		right: build(depth-1, rng),
	}
}

// hasProperty is the predicate from the paper's example.
func hasProperty(n *node) bool { return n.value%7 == 0 }

// serialWalk is the reference: a plain preorder walk appending to a slice.
func serialWalk(n *node, out *[]int) {
	if n == nil {
		return
	}
	if hasProperty(n) {
		*out = append(*out, n.value)
	}
	serialWalk(n.left, out)
	serialWalk(n.right, out)
}

func main() {
	var (
		depth   = flag.Int("depth", 18, "tree depth (the tree has 2^depth - 1 nodes)")
		workers = flag.Int("workers", 8, "number of workers")
	)
	flag.Parse()

	root := build(*depth, rand.New(rand.NewSource(42)))

	var want []int
	start := time.Now()
	serialWalk(root, &want)
	serialTime := time.Since(start)

	session := cilkm.New(cilkm.WithWorkers(*workers))
	defer session.Close()
	list := cilkm.NewList[int](session.Engine())

	// walk mirrors Figure 2(b): check the node, then walk the children in
	// parallel.  Fork runs the left child inline and exposes the right
	// child to thieves, exactly like cilk_spawn / cilk_sync.
	var walk func(c *cilkm.Context, n *node)
	walk = func(c *cilkm.Context, n *node) {
		if n == nil {
			return
		}
		if hasProperty(n) {
			list.PushBack(c, n.value)
		}
		c.Fork(
			func(c *cilkm.Context) { walk(c, n.left) },
			func(c *cilkm.Context) { walk(c, n.right) },
		)
	}

	start = time.Now()
	if err := session.Run(func(c *cilkm.Context) { walk(c, root) }); err != nil {
		log.Fatalf("run failed: %v", err)
	}
	parallelTime := time.Since(start)

	got := list.Value()
	if len(got) != len(want) {
		log.Fatalf("collected %d nodes, serial walk collected %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			log.Fatalf("position %d differs from the serial walk: got %d, want %d", i, got[i], want[i])
		}
	}
	fmt.Printf("tree nodes: %d, matching nodes: %d\n", (1<<*depth)-1, len(got))
	fmt.Printf("serial walk:   %v\n", serialTime.Round(time.Microsecond))
	fmt.Printf("parallel walk: %v on %d workers (%d steals)\n",
		parallelTime.Round(time.Microsecond), *workers, session.Runtime().Stats().Steals)
	fmt.Println("output list is identical to the serial walk ✓")
}
